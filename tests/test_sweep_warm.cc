/**
 * Tests for warm-start sweep execution (DESIGN.md §14): warm-forked
 * results must be byte-identical to fresh serial runs across design
 * points and fault injection, the WarmStateCache must be single-flight
 * under concurrency, a corrupted warm file must degrade to a fresh run
 * (never a wrong result), the memory cap must evict LRU-first, and the
 * warmupFingerprint field classification must stay exhaustive as
 * GpuConfig grows.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/config.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/sweep_io.hh"
#include "workload/suite.hh"

using namespace mask;

namespace {

/** Small GPU so each simulated leg runs in milliseconds. */
GpuConfig
smallConfig(bool faults)
{
    GpuConfig cfg;
    cfg.numCores = 6;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    if (faults) {
        cfg.harden.fault.enabled = true;
        cfg.harden.fault.seed = 11;
        cfg.harden.fault.dramDelayProb = 0.05;
        cfg.harden.fault.walkDropProb = 0.02;
    }
    return cfg;
}

RunOptions
warmOptions()
{
    RunOptions options;
    options.warmup = 2000;
    options.measure = 4000;
    return options;
}

std::vector<std::string>
samplePair()
{
    const WorkloadPair &pair = workloadPairs().front();
    return {pair.first, pair.second};
}

SweepJob
gridJob(const GpuConfig &arch, DesignPoint point, Cycle measure,
        SweepMode mode = SweepMode::SharedOnly)
{
    SweepJob job;
    job.arch = arch;
    job.point = point;
    job.benches = samplePair();
    job.mode = mode;
    RunOptions options = warmOptions();
    options.measure = measure;
    job.options = options;
    return job;
}

WarmPolicy
memPolicy()
{
    WarmPolicy policy;
    policy.enabled = true;
    return policy;
}

/** Unique-ish temp dir under the build dir (no clock/random: gtest
 *  runs each test in its own ctest process, so the PID suffices). */
std::string
tempDir(const std::string &tag)
{
    const std::string dir = "sweep_warm_" + tag + "_" +
                            std::to_string(::getpid()) + ".tmp";
    ::mkdir(dir.c_str(), 0777);
    return dir;
}

void
removeDir(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str()); d != nullptr) {
        while (const dirent *entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name != "." && name != "..")
                ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

std::vector<std::string>
snapFilesIn(const std::string &dir)
{
    std::vector<std::string> files;
    if (DIR *d = ::opendir(dir.c_str()); d != nullptr) {
        while (const dirent *entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name.size() > 5 &&
                name.compare(name.size() - 5, 5, ".snap") == 0)
                files.push_back(dir + "/" + name);
        }
        ::closedir(d);
    }
    return files;
}

/** Run @p jobs on a fresh runner and return encodePairResult blobs. */
std::vector<std::string>
runAndEncode(const std::vector<SweepJob> &jobs, WarmPolicy warm,
             unsigned workers,
             WarmStateCache::Stats *stats_out = nullptr)
{
    SweepRunner sweep(warmOptions(), workers);
    sweep.setWarmPolicy(std::move(warm));
    std::vector<std::size_t> ids;
    ids.reserve(jobs.size());
    for (const SweepJob &job : jobs)
        ids.push_back(sweep.submit(job));
    sweep.run();
    std::vector<std::string> blobs;
    blobs.reserve(ids.size());
    for (const std::size_t id : ids)
        blobs.push_back(encodePairResult(sweep.result(id)));
    if (stats_out != nullptr)
        *stats_out = sweep.warmStats();
    return blobs;
}

} // namespace

// --- Warm-vs-fresh byte identity -------------------------------------

TEST(SweepWarm, WarmForkedResultsByteIdenticalAcrossDesignsAndFaults)
{
    for (const DesignPoint point :
         {DesignPoint::SharedTlb, DesignPoint::Mask,
          DesignPoint::Ideal}) {
        for (const bool faults : {false, true}) {
            const GpuConfig arch = smallConfig(faults);
            // Two measure lengths sharing one warmup fingerprint: the
            // second job restores the snapshot the first published.
            const std::vector<SweepJob> jobs = {
                gridJob(arch, point, 4000),
                gridJob(arch, point, 2000),
            };
            const std::vector<std::string> fresh =
                runAndEncode(jobs, WarmPolicy{}, 1);
            WarmStateCache::Stats stats;
            const std::vector<std::string> warm =
                runAndEncode(jobs, memPolicy(), 1, &stats);
            EXPECT_EQ(fresh, warm)
                << "design=" << designPointName(point)
                << " faults=" << faults;
            EXPECT_EQ(stats.misses, 1u);
            EXPECT_EQ(stats.hits, 1u);
            EXPECT_EQ(stats.warmupCyclesSaved, warmOptions().warmup);
            EXPECT_EQ(stats.fallbacks, 0u);
        }
    }
}

TEST(SweepWarm, MetricsModeWarmMatchesFresh)
{
    // Metrics mode adds the alone runs, which take the warm path with
    // their own (single-bench, resized-GPU) fingerprints.
    const GpuConfig arch = smallConfig(false);
    const std::vector<SweepJob> jobs = {
        gridJob(arch, DesignPoint::Mask, 4000, SweepMode::Metrics),
        gridJob(arch, DesignPoint::Mask, 2000, SweepMode::Metrics),
    };
    const std::vector<std::string> fresh =
        runAndEncode(jobs, WarmPolicy{}, 1);
    WarmStateCache::Stats stats;
    const std::vector<std::string> warm =
        runAndEncode(jobs, memPolicy(), 1, &stats);
    EXPECT_EQ(fresh, warm);
    // Job 1 warms three states (the shared run plus one alone run per
    // application); job 2's measure window differs so its alone-IPC
    // memo keys differ, but all three of its runs share job 1's warmup
    // fingerprints and hit.
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 3u);
}

// --- Single flight under concurrency ---------------------------------

TEST(SweepWarm, SingleFlightUnderFourWorkers)
{
    const GpuConfig arch = smallConfig(false);
    const std::vector<SweepJob> jobs = {
        gridJob(arch, DesignPoint::SharedTlb, 1000),
        gridJob(arch, DesignPoint::SharedTlb, 2000),
        gridJob(arch, DesignPoint::SharedTlb, 3000),
        gridJob(arch, DesignPoint::SharedTlb, 4000),
    };
    const std::vector<std::string> fresh =
        runAndEncode(jobs, WarmPolicy{}, 1);
    WarmStateCache::Stats stats;
    const std::vector<std::string> warm =
        runAndEncode(jobs, memPolicy(), 4, &stats);
    EXPECT_EQ(fresh, warm);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.warmupCyclesSaved, 3 * warmOptions().warmup);
}

TEST(SweepWarm, CacheSingleFlightBlocksConcurrentProducers)
{
    WarmStateCache cache(memPolicy());
    std::atomic<int> produced{0};
    const auto produce = [&produced]() {
        ++produced;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return std::string("image-bytes");
    };
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&]() {
            if (cache.getOrWarm("key", 1000, produce) != "image-bytes")
                ++mismatches;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(produced.load(), 1);
    EXPECT_EQ(mismatches.load(), 0);
    const WarmStateCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 7u);
    EXPECT_EQ(stats.warmupCyclesSaved, 7000u);
}

// --- Memory cap / eviction -------------------------------------------

TEST(SweepWarm, MemoryCapEvictsLeastRecentlyUsed)
{
    WarmPolicy policy;
    policy.enabled = true;
    policy.memCapBytes = 8;
    WarmStateCache cache(policy);
    int produced = 0;
    const auto image = [&produced](const char *bytes) {
        return [&produced, bytes]() {
            ++produced;
            return std::string(bytes);
        };
    };
    cache.getOrWarm("a", 10, image("aaaaaa")); // 6 bytes resident
    cache.getOrWarm("b", 10, image("bbbbbb")); // 12 > 8: "a" evicted
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.getOrWarm("b", 10, image("XXXXXX")), "bbbbbb");
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.getOrWarm("a", 10, image("aaaaaa")); // re-produced
    EXPECT_EQ(produced, 3);

    // An image over the cap is never memory-resident: every request
    // re-produces (in file-backed mode the file would serve it).
    cache.getOrWarm("big", 10, image("0123456789abcdef"));
    cache.getOrWarm("big", 10, image("0123456789abcdef"));
    EXPECT_EQ(produced, 5);

    // Cap 0 = unlimited.
    WarmPolicy unlimited;
    unlimited.enabled = true;
    unlimited.memCapBytes = 0;
    WarmStateCache big(unlimited);
    const std::string megabyte(1 << 20, 'x');
    big.getOrWarm("k", 10, [&megabyte]() { return megabyte; });
    EXPECT_EQ(big.stats().evictions, 0u);
}

// --- Corrupted warm file ---------------------------------------------

TEST(SweepWarm, CorruptedWarmFileFallsBackToFreshRun)
{
    const std::string dir = tempDir("corrupt");
    const GpuConfig arch = smallConfig(false);
    const std::vector<SweepJob> jobs = {
        gridJob(arch, DesignPoint::Mask, 2000)};
    const std::vector<std::string> fresh =
        runAndEncode(jobs, WarmPolicy{}, 1);

    WarmPolicy file_policy = memPolicy();
    file_policy.dir = dir;
    runAndEncode(jobs, file_policy, 1); // publishes <dir>/<key>.snap

    std::vector<std::string> files = snapFilesIn(dir);
    ASSERT_EQ(files.size(), 1u);
    {
        // Flip one payload byte: the header parses, the checksum does
        // not — exactly the shape of on-disk bit rot.
        std::fstream f(files.front(),
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const std::streamoff size = f.tellg();
        f.seekg(size - 2);
        char byte = 0;
        f.read(&byte, 1);
        f.seekp(size - 2);
        byte = static_cast<char>(byte ^ 0x40);
        f.write(&byte, 1);
    }

    // A new runner (fresh in-memory state) reads the corrupt file,
    // rejects it during restore, and re-runs fresh — identical bytes.
    WarmStateCache::Stats stats;
    const std::vector<std::string> recovered =
        runAndEncode(jobs, file_policy, 1, &stats);
    EXPECT_EQ(fresh, recovered);
    EXPECT_EQ(stats.fallbacks, 1u);
    // invalidate() dropped the poisoned file.
    EXPECT_TRUE(snapFilesIn(dir).empty());
    removeDir(dir);
}

// --- File-backed reuse across runners --------------------------------

TEST(SweepWarm, WarmFilesServeAcrossRunnerInstances)
{
    const std::string dir = tempDir("reuse");
    const GpuConfig arch = smallConfig(false);
    const std::vector<SweepJob> jobs = {
        gridJob(arch, DesignPoint::SharedTlb, 2000)};
    const std::vector<std::string> fresh =
        runAndEncode(jobs, WarmPolicy{}, 1);

    WarmPolicy file_policy = memPolicy();
    file_policy.dir = dir;
    WarmStateCache::Stats first;
    runAndEncode(jobs, file_policy, 1, &first);
    EXPECT_EQ(first.misses, 1u);

    // Second runner: no in-memory state, but the file is a hit — the
    // journal-resume and fork-isolation sharing path.
    WarmStateCache::Stats second;
    const std::vector<std::string> reused =
        runAndEncode(jobs, file_policy, 1, &second);
    EXPECT_EQ(fresh, reused);
    EXPECT_EQ(second.misses, 0u);
    EXPECT_EQ(second.hits, 1u);
    removeDir(dir);
}

// --- Config-field classification exhaustiveness ----------------------

/**
 * Mirror structs replicating every configuration struct field-for-
 * field. If someone adds a field to any config struct, the sizeof
 * comparison below breaks this build until the mirror — and therefore
 * this checklist — is updated, and the fingerprint sensitivity checks
 * force the new field to be classified warmup-affecting (mixed into
 * warmupFingerprint) or measure-only/behaviour-neutral (documented on
 * the declaration). This is the exhaustiveness contract of
 * warmupFingerprint(): no field may be silently unclassified.
 */
namespace mirror {

struct CacheConfig
{
    std::uint32_t sizeBytes, lineBytes, ways, latency, banks,
        portsPerBank, mshrs; // all warmup-affecting
};

struct TlbConfig
{
    std::uint32_t entries, ways, latency, ports,
        mshrs; // all warmup-affecting
};

struct DramConfig
{
    std::uint32_t channels, banksPerChannel, rowBytes, tRcd, tRp, tCl,
        tBurst, queueEntries, starvationCap; // all warmup-affecting
};

struct WalkerConfig
{
    std::uint32_t maxConcurrentWalks, levels; // all warmup-affecting
};

struct MaskConfig
{
    bool tlbTokens, l2Bypass, dramSched; // warmup-affecting
    Cycle epochCycles;                   // warmup-affecting
    double initialTokenFraction, missRateDelta,
        tokenStepFraction; // warmup-affecting
    std::uint32_t bypassCacheEntries, minBypassSamples,
        sampleProbeInterval, goldenQueueEntries, silverQueueEntries,
        normalQueueEntries, threshMax;  // warmup-affecting
    Cycle goldenMaxDelay, silverMaxDelay; // warmup-affecting
};

struct WatchdogConfig
{
    bool enabled;        // warmup-affecting (can trip mid-warmup)
    Cycle sweepInterval; // warmup-affecting
    Cycle maxAge;        // warmup-affecting
};

struct FaultInjectConfig
{
    bool enabled;       // warmup-affecting (perturbs timing)
    std::uint64_t seed; // warmup-affecting
    double dramDelayProb;
    Cycle dramDelayCycles;
    double walkDropProb;
    bool walkDropRetry;
    Cycle walkRetryDelay;
    Cycle shootdownInterval;
    double portStallProb;
    Cycle portStallCycles; // all warmup-affecting
};

struct HardenConfig
{
    WatchdogConfig watchdog;
    FaultInjectConfig fault;
    std::size_t poolHighWater; // warmup-affecting (invariant bound)
};

struct PartitionConfig
{
    bool partitionL2;           // warmup-affecting
    bool partitionDramChannels; // warmup-affecting
};

struct GpuConfig
{
    std::string name; // measure-only/neutral: free-form label
    std::uint32_t numCores, warpsPerCore, threadsPerWarp,
        lsuWidth;                      // warmup-affecting
    std::uint32_t pageBits, lineBits;  // warmup-affecting
    TranslationDesign design;          // warmup-affecting
    TlbConfig l1Tlb, l2Tlb;            // warmup-affecting
    CacheConfig pwCache, l1d, l2;      // warmup-affecting
    DramConfig dram;                   // warmup-affecting
    WalkerConfig walker;               // warmup-affecting
    MaskConfig mask;                   // warmup-affecting
    PartitionConfig partition;         // warmup-affecting
    HardenConfig harden;               // warmup-affecting
    std::vector<std::uint32_t> coreShares; // warmup-affecting
    bool cycleSkip; // neutral: bit-identical either way by contract
    std::uint64_t seed; // warmup-affecting
};

} // namespace mirror

TEST(SweepWarm, EveryConfigFieldIsClassified)
{
    // A new field in any config struct changes its size and fails the
    // matching assertion; add the field to the mirror above WITH a
    // warmup-affecting / measure-only classification comment, and mix
    // it into warmupFingerprint() (or document its exclusion there).
    static_assert(sizeof(CacheConfig) == sizeof(mirror::CacheConfig),
                  "CacheConfig changed: classify the new field for "
                  "warmupFingerprint");
    static_assert(sizeof(TlbConfig) == sizeof(mirror::TlbConfig),
                  "TlbConfig changed: classify the new field");
    static_assert(sizeof(DramConfig) == sizeof(mirror::DramConfig),
                  "DramConfig changed: classify the new field");
    static_assert(sizeof(WalkerConfig) == sizeof(mirror::WalkerConfig),
                  "WalkerConfig changed: classify the new field");
    static_assert(sizeof(MaskConfig) == sizeof(mirror::MaskConfig),
                  "MaskConfig changed: classify the new field");
    static_assert(sizeof(WatchdogConfig) ==
                      sizeof(mirror::WatchdogConfig),
                  "WatchdogConfig changed: classify the new field");
    static_assert(sizeof(FaultInjectConfig) ==
                      sizeof(mirror::FaultInjectConfig),
                  "FaultInjectConfig changed: classify the new field");
    static_assert(sizeof(HardenConfig) == sizeof(mirror::HardenConfig),
                  "HardenConfig changed: classify the new field");
    static_assert(sizeof(PartitionConfig) ==
                      sizeof(mirror::PartitionConfig),
                  "PartitionConfig changed: classify the new field");
    static_assert(sizeof(GpuConfig) == sizeof(mirror::GpuConfig),
                  "GpuConfig changed: classify the new field");
    SUCCEED();
}

TEST(SweepWarm, WarmupFingerprintSensitivity)
{
    const GpuConfig base = smallConfig(false);
    const std::uint64_t wfp = warmupFingerprint(base);

    // Excluded fields: behaviour-neutral by contract.
    GpuConfig renamed = base;
    renamed.name = "some-other-label";
    EXPECT_EQ(warmupFingerprint(renamed), wfp);
    GpuConfig no_skip = base;
    no_skip.cycleSkip = !base.cycleSkip;
    EXPECT_EQ(warmupFingerprint(no_skip), wfp);

    // Warmup-affecting fields must perturb the fingerprint.
    GpuConfig seeded = base;
    seeded.seed = base.seed + 1;
    EXPECT_NE(warmupFingerprint(seeded), wfp);
    GpuConfig redesigned = base;
    redesigned.design = TranslationDesign::Ideal;
    EXPECT_NE(warmupFingerprint(redesigned), wfp);
    GpuConfig resized = base;
    resized.numCores = base.numCores + 2;
    EXPECT_NE(warmupFingerprint(resized), wfp);
    GpuConfig retimed = base;
    retimed.l2Tlb.entries *= 2;
    EXPECT_NE(warmupFingerprint(retimed), wfp);
    GpuConfig faulted = base;
    faulted.harden.fault.enabled = true;
    EXPECT_NE(warmupFingerprint(faulted), wfp);
    GpuConfig shared = base;
    shared.coreShares = {4, 2};
    EXPECT_NE(warmupFingerprint(shared), wfp);

    // Distinct hash family from configFingerprint (a warm snapshot
    // header can never validate against a checkpoint fingerprint).
    EXPECT_NE(wfp, configFingerprint(base));

    // Design points produce distinct warmup prefixes (MASK adapts from
    // cycle 0), so they never share warmed state.
    EXPECT_NE(warmupFingerprint(
                  applyDesignPoint(base, DesignPoint::Mask)),
              warmupFingerprint(
                  applyDesignPoint(base, DesignPoint::SharedTlb)));
}

TEST(SweepWarm, WarmStateKeyCoversWorkloadAndWindow)
{
    const std::string key = warmStateKey(0x1234, {"HISTO", "LPS"}, 2000);
    EXPECT_NE(key, warmStateKey(0x1235, {"HISTO", "LPS"}, 2000));
    EXPECT_NE(key, warmStateKey(0x1234, {"HISTO"}, 2000));
    EXPECT_NE(key, warmStateKey(0x1234, {"HISTO", "LPS"}, 4000));
    // Filename-safe: the key doubles as a warm-file basename.
    for (const char c : key) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == '-')
            << "unsafe character in warm key: " << c;
    }
}
