/**
 * @file
 * Randomized round-trip fuzzing of the exact sweep-result codec
 * (sweep_io). The journal and the fork-isolation pipe both rely on
 * encodePairResult/decodePairResult reproducing every bit of a
 * PairResult; here random results — including denormal, negative-zero
 * and huge doubles — must survive the trip exactly, and corrupted
 * blobs (truncations, flipped characters, foreign versions) must be
 * rejected with a clear error, never a crash. Deterministically
 * seeded so failures reproduce.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>

#include "sim/runner.hh"
#include "sim/sweep_io.hh"

namespace mask {
namespace {

using Rng = std::mt19937_64;

/**
 * Random finite double drawn from the full bit space (signs,
 * denormals, negative zero, extreme exponents) — any finite pattern
 * must round-trip through the %a hex-float encoding bit-exactly.
 */
double
randomDouble(Rng &rng)
{
    std::uint64_t bits = rng();
    // Clear an all-ones exponent: NaN payloads are not preserved by
    // printf("%a") and infinities never occur in real stats.
    constexpr std::uint64_t kExpMask = 0x7ff0000000000000ull;
    if ((bits & kExpMask) == kExpMask)
        bits &= ~(1ull << 62);
    double v = 0.0;
    static_assert(sizeof(v) == sizeof(bits));
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(a)) == 0;
}

RunningStat
randomRunningStat(Rng &rng)
{
    RunningStat v;
    v.count = rng();
    v.sum = randomDouble(rng);
    v.minVal = randomDouble(rng);
    v.maxVal = randomDouble(rng);
    return v;
}

HitMiss
randomHitMiss(Rng &rng)
{
    HitMiss v;
    v.hits = rng();
    v.misses = rng();
    return v;
}

std::size_t
smallSize(Rng &rng)
{
    return static_cast<std::size_t>(rng() % 5);
}

PairResult
randomResult(Rng &rng)
{
    PairResult r;
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        r.sharedIpc.push_back(randomDouble(rng));
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        r.aloneIpc.push_back(randomDouble(rng));
    r.weightedSpeedup = randomDouble(rng);
    r.ipcThroughput = randomDouble(rng);
    r.unfairness = randomDouble(rng);

    GpuStats &s = r.stats;
    s.cycles = rng();
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.instructions.push_back(rng());
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.ipc.push_back(randomDouble(rng));
    s.l1Tlb = randomHitMiss(rng);
    s.l2Tlb = randomHitMiss(rng);
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.l2TlbPerApp.push_back(randomHitMiss(rng));
    s.bypassCache = randomHitMiss(rng);
    s.pwCache = randomHitMiss(rng);
    s.l1d = randomHitMiss(rng);
    for (HitMiss &v : s.l2Cache)
        v = randomHitMiss(rng);
    for (HitMiss &v : s.l2CachePerLevel)
        v = randomHitMiss(rng);

    for (std::uint64_t &v : s.dram.busBusy)
        v = rng();
    for (std::uint64_t &v : s.dram.serviced)
        v = rng();
    for (RunningStat &v : s.dram.latency)
        v = randomRunningStat(rng);
    s.dram.rowHits = rng();
    s.dram.rowMisses = rng();
    s.dram.rowConflicts = rng();
    s.dram.enqueueRejects = rng();
    s.dram.capEscalations = rng();

    s.walks = rng();
    s.walkLatency = randomRunningStat(rng);
    s.tlbMissLatency = randomRunningStat(rng);
    s.concurrentWalks = randomRunningStat(rng);
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.concurrentWalksPerApp.push_back(randomRunningStat(rng));
    s.warpsPerMiss = randomRunningStat(rng);
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.warpsPerMissPerApp.push_back(randomRunningStat(rng));
    s.readyWarpsPerCore = randomRunningStat(rng);

    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.tokens.push_back(static_cast<std::uint32_t>(rng()));
    s.l2Bypasses = rng();
    s.warpStallCycles = rng();
    s.watchdogSweeps = rng();
    s.watchdogMaxAgeSeen = rng();
    s.faultsInjected = rng();
    s.poolPeakLive = static_cast<std::size_t>(rng());
    s.poolCapacity = static_cast<std::size_t>(rng());
    s.requests = rng();
    s.skippedCycles = rng();
    s.skipWindows = rng();
    for (std::size_t i = 0, n = smallSize(rng); i < n; ++i)
        s.skipWindowLog2.push_back(rng());
    // wallSeconds and the ckpt* overhead fields stay zero: they are
    // host-side accounting the codec deliberately encodes as zeros so
    // the blob is a pure function of the simulation.
    return r;
}

TEST(SweepIoFuzz, RandomResultsRoundTripExactly)
{
    Rng rng(0xA5EED5EEDull);
    for (int iter = 0; iter < 200; ++iter) {
        const PairResult r = randomResult(rng);
        const std::string blob = encodePairResult(r);
        const PairResult back = decodePairResult(blob);

        // Re-encoding the decoded result reproduces the blob byte for
        // byte; with a deterministic encoder covering every field this
        // implies field-level equality.
        EXPECT_EQ(encodePairResult(back), blob) << "iter " << iter;

        // Belt and braces: bit-compare a cross-section of doubles
        // (including whatever denormals the generator produced).
        ASSERT_EQ(back.sharedIpc.size(), r.sharedIpc.size());
        for (std::size_t i = 0; i < r.sharedIpc.size(); ++i)
            EXPECT_TRUE(bitEqual(back.sharedIpc[i], r.sharedIpc[i]));
        EXPECT_TRUE(
            bitEqual(back.weightedSpeedup, r.weightedSpeedup));
        EXPECT_TRUE(bitEqual(back.stats.walkLatency.sum,
                             r.stats.walkLatency.sum));
        EXPECT_TRUE(bitEqual(back.stats.warpsPerMiss.minVal,
                             r.stats.warpsPerMiss.minVal));
        EXPECT_EQ(back.stats.cycles, r.stats.cycles);
        EXPECT_EQ(back.stats.dram.rowHits, r.stats.dram.rowHits);
    }
}

TEST(SweepIoFuzz, ExtremeDoublesRoundTrip)
{
    PairResult r;
    r.sharedIpc = {
        0.0,
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon(),
        1.0 / 3.0,
    };
    const PairResult back = decodePairResult(encodePairResult(r));
    ASSERT_EQ(back.sharedIpc.size(), r.sharedIpc.size());
    for (std::size_t i = 0; i < r.sharedIpc.size(); ++i)
        EXPECT_TRUE(bitEqual(back.sharedIpc[i], r.sharedIpc[i]))
            << "index " << i;
}

TEST(SweepIoFuzz, DeepTruncationIsRejected)
{
    Rng rng(42);
    const std::string blob = encodePairResult(randomResult(rng));
    // A cut deep inside the stream always leaves a vector count
    // without its elements or a missing tail — a clear decode error.
    EXPECT_THROW(decodePairResult(blob.substr(0, blob.size() / 3)),
                 std::runtime_error);
    EXPECT_THROW(decodePairResult(std::string()), std::runtime_error);
    EXPECT_THROW(decodePairResult("v2"), std::runtime_error);
}

TEST(SweepIoFuzz, EveryTruncationFailsOrDecodesDifferently)
{
    Rng rng(43);
    const std::string blob = encodePairResult(randomResult(rng));
    // No prefix may silently decode to the original result: either
    // the decoder throws, or the decode visibly differs (a cut inside
    // the final token can still parse, but never back to the full
    // blob). Every iteration must be crash-free — this test also runs
    // under ASan/UBSan.
    for (std::size_t len = 0; len < blob.size(); ++len) {
        bool threw = false;
        std::string reencoded;
        try {
            reencoded = encodePairResult(
                decodePairResult(blob.substr(0, len)));
        } catch (const std::runtime_error &) {
            threw = true;
        }
        EXPECT_TRUE(threw || reencoded != blob) << "prefix " << len;
    }
}

TEST(SweepIoFuzz, RandomCharCorruptionNeverCrashes)
{
    Rng rng(44);
    const std::string blob = encodePairResult(randomResult(rng));
    int rejected = 0;
    for (int iter = 0; iter < 500; ++iter) {
        std::string bad = blob;
        const std::size_t pos = rng() % bad.size();
        char c = static_cast<char>(rng() % 0x60 + 0x20);
        if (c == bad[pos])
            c = '#';
        bad[pos] = c;
        try {
            (void)decodePairResult(bad);
        } catch (const std::runtime_error &) {
            ++rejected; // structured rejection is the expected path
        }
    }
    // Most single-character corruptions land in a token and break
    // parsing; a few flip digits silently (the snapshot layer's
    // checksum exists for those). Either way: no crash, no UB.
    EXPECT_GT(rejected, 0);
}

TEST(SweepIoFuzz, ForeignVersionIsRejected)
{
    Rng rng(45);
    std::string blob = encodePairResult(randomResult(rng));
    ASSERT_EQ(blob.compare(0, 2, "v2"), 0);
    blob[1] = '9';
    try {
        (void)decodePairResult(blob);
        FAIL() << "foreign version accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace mask
