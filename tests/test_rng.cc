/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace mask {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowZeroBoundIsZero)
{
    Rng rng(3);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(11);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversSmallRange)
{
    Rng rng(5);
    bool seen[8] = {};
    for (int i = 0; i < 500; ++i)
        seen[rng.below(8)] = true;
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        lo |= v == 10;
        hi |= v == 13;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, RangeDegenerate)
{
    Rng rng(1);
    EXPECT_EQ(rng.range(5, 5), 5u);
    EXPECT_EQ(rng.range(9, 3), 9u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(123);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(77);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(88);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximation)
{
    Rng rng(99);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(10.0));
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, GeometricMinimumIsOne)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(1.0), 1u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(0.0), 1u);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, BelowStaysInBoundAndVaries)
{
    Rng rng(GetParam());
    std::uint64_t min = ~0ull, max = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(1000);
        min = std::min(min, v);
        max = std::max(max, v);
        ASSERT_LT(v, 1000u);
    }
    EXPECT_LT(min, 100u);
    EXPECT_GT(max, 900u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1337,
                                           0xdeadbeef, ~0ull));

} // namespace
} // namespace mask
