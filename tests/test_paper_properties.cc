/**
 * @file
 * Reproduction-shape tests: the paper's key qualitative claims,
 * asserted on a small GPU so they act as regression protection for
 * the evaluation harness.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

GpuConfig
paperGpu()
{
    GpuConfig cfg;
    cfg.numCores = 8;
    cfg.warpsPerCore = 32;
    cfg.l2 = CacheConfig{512 * 1024, 128, 8, 10, 8, 2, 128};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 4;
    cfg.mask.epochCycles = 4000;
    return cfg;
}

/** TLB-heavy irregular application (3DS-like). */
BenchmarkParams
tlbHeavy()
{
    BenchmarkParams p;
    p.name = "heavy";
    p.hotPages = 4;
    p.coldPages = 100000;
    p.hotFraction = 0.05;
    p.pageRun = 2;
    p.streamFraction = 0.5;
    p.blockWarps = 64;
    p.randWindow = 12;
    p.stepAccesses = 80;
    p.pageStride = 17;
    p.computeMean = 4;
    p.memDivergence = 2;
    p.lineReuse = 0.5;
    return p;
}

/** Streaming application with good row locality (HISTO-like). */
BenchmarkParams
streaming()
{
    BenchmarkParams p = tlbHeavy();
    p.name = "stream";
    p.coldPages = 50000;
    p.pageRun = 24;
    p.streamFraction = 0.9;
    p.randWindow = 2;
    p.stepAccesses = 400;
    p.computeMean = 6;
    p.memDivergence = 1;
    return p;
}

GpuStats
runPair(DesignPoint point, const BenchmarkParams &a,
        const BenchmarkParams &b)
{
    const GpuConfig cfg = applyDesignPoint(paperGpu(), point);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
    gpu.run(10000);
    gpu.resetStats();
    gpu.run(40000);
    return gpu.collect();
}

double
totalIpc(const GpuStats &stats)
{
    return stats.ipc[0] + stats.ipc[1];
}

TEST(PaperProperties, IdealOutperformsBaselines)
{
    const BenchmarkParams a = tlbHeavy(), b = streaming();
    const double ideal = totalIpc(runPair(DesignPoint::Ideal, a, b));
    const double shared =
        totalIpc(runPair(DesignPoint::SharedTlb, a, b));
    const double pw = totalIpc(runPair(DesignPoint::PwCache, a, b));
    EXPECT_GT(ideal, shared)
        << "Section 3: address translation must cost something";
    EXPECT_GT(ideal, pw);
}

TEST(PaperProperties, StaticPartitioningIsWorstDesign)
{
    const BenchmarkParams a = tlbHeavy(), b = streaming();
    const double stat = totalIpc(runPair(DesignPoint::Static, a, b));
    const double shared =
        totalIpc(runPair(DesignPoint::SharedTlb, a, b));
    EXPECT_LT(stat, shared)
        << "Section 7.1: static partitioning leaves resources "
           "underutilized";
}

TEST(PaperProperties, MaskReducesTlbMissLatency)
{
    const BenchmarkParams a = tlbHeavy();
    const GpuStats shared = runPair(DesignPoint::SharedTlb, a, a);
    const GpuStats mask = runPair(DesignPoint::Mask, a, a);
    ASSERT_GT(shared.tlbMissLatency.count, 100u);
    EXPECT_LT(mask.tlbMissLatency.mean(),
              shared.tlbMissLatency.mean())
        << "MASK's mechanisms must cut end-to-end TLB miss latency";
}

TEST(PaperProperties, GoldenQueueCutsTranslationDramLatency)
{
    const BenchmarkParams a = tlbHeavy();
    const GpuStats shared = runPair(DesignPoint::SharedTlb, a, a);
    const GpuStats sched = runPair(DesignPoint::MaskDram, a, a);
    ASSERT_GT(shared.dram.latency[1].count, 100u);
    EXPECT_LT(sched.dram.latency[1].mean(),
              0.8 * shared.dram.latency[1].mean())
        << "Section 5.4: the Golden Queue must slash translation "
           "DRAM latency";
}

TEST(PaperProperties, FrFcfsPenalizesTranslationRequests)
{
    // Fig. 9: under FR-FCFS, random-row translation requests see
    // latency at least comparable to (typically above) streaming
    // data requests despite their tiny bandwidth share.
    const BenchmarkParams a = tlbHeavy(), b = streaming();
    const GpuStats stats = runPair(DesignPoint::SharedTlb, a, b);
    ASSERT_GT(stats.dram.latency[1].count, 50u);
    EXPECT_GT(stats.dram.latency[1].mean(),
              0.9 * stats.dram.latency[0].mean());
    // ... while consuming far less bandwidth (Fig. 8).
    EXPECT_LT(stats.dram.busBusy[1], stats.dram.busBusy[0]);
}

TEST(PaperProperties, WalkLevelHitRatesDecreaseWithDepth)
{
    // Section 4.3: levels closer to the root hit the L2 more.
    const BenchmarkParams a = tlbHeavy();
    const GpuStats stats = runPair(DesignPoint::SharedTlb, a, a);
    ASSERT_GT(stats.l2CachePerLevel[4].accesses(), 100u);
    EXPECT_GE(stats.l2CachePerLevel[1].hitRate(),
              stats.l2CachePerLevel[3].hitRate());
    EXPECT_GT(stats.l2CachePerLevel[3].hitRate(),
              stats.l2CachePerLevel[4].hitRate());
    EXPECT_LT(stats.l2CachePerLevel[4].hitRate(), 0.5)
        << "leaf PTE reads should mostly miss the L2 (paper: ~1%)";
}

TEST(PaperProperties, L2BypassAvoidsLeafFills)
{
    // The bypass condition compares leaf-level hit rate against the
    // data hit rate, so give the data stream some shared locality
    // (as the paper's workloads have).
    BenchmarkParams a = tlbHeavy();
    a.hotPages = 16;
    a.hotFraction = 0.5;
    a.lineReuse = 0.2;
    const GpuStats stats = runPair(DesignPoint::MaskCache, a, a);
    ASSERT_GT(stats.l2Cache[0].hitRate(), 0.1)
        << "test workload must have data locality";
    EXPECT_GT(stats.l2Bypasses, 100u)
        << "the policy must learn to bypass the low-hit leaf level";
}

TEST(PaperProperties, SharingRaisesL2TlbMissRate)
{
    // Fig. 7: inter-address-space interference thrashes the shared
    // L2 TLB.
    const BenchmarkParams a = tlbHeavy();
    GpuConfig alone_cfg =
        applyDesignPoint(paperGpu(), DesignPoint::SharedTlb);
    alone_cfg.numCores /= 2;
    Gpu alone(alone_cfg, {AppDesc{&a}});
    alone.run(10000);
    alone.resetStats();
    alone.run(40000);
    const double alone_miss = alone.collect().l2Tlb.missRate();

    const GpuStats shared = runPair(DesignPoint::SharedTlb, a, a);
    EXPECT_GT(shared.l2Tlb.missRate(), alone_miss - 0.02);
}

TEST(PaperProperties, MultiWarpStallsPerMiss)
{
    // Fig. 4/6: one TLB miss stalls multiple warps.
    const BenchmarkParams a = tlbHeavy();
    const GpuStats stats = runPair(DesignPoint::SharedTlb, a, a);
    ASSERT_GT(stats.warpsPerMiss.count, 100u);
    EXPECT_GT(stats.warpsPerMiss.mean(), 1.5);
    EXPECT_GT(stats.warpsPerMiss.maxVal, 8.0);
}

TEST(PaperProperties, TokensAdaptUnderThrash)
{
    const BenchmarkParams a = tlbHeavy();
    const GpuStats stats = runPair(DesignPoint::MaskTlb, a, a);
    // The bypass cache must be exercised once tokens are withheld.
    EXPECT_GT(stats.bypassCache.accesses(), 0u);
}

TEST(PaperProperties, ShootdownsPreserveIsolationAndCorrectness)
{
    // Section 5.1 requirement behind all MASK mechanisms: concurrent
    // address spaces never observe each other's translations, even
    // when spurious full shootdowns are injected mid-run, and every
    // post-flush walk re-reads the live page table.
    GpuConfig cfg =
        applyDesignPoint(paperGpu(), DesignPoint::SharedTlb);
    cfg.harden.fault.enabled = true;
    cfg.harden.fault.shootdownInterval = 3000;
    const BenchmarkParams a = tlbHeavy();
    const BenchmarkParams b = streaming();
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
    gpu.run(15000);

    // Remap one page of app 0 behind the TLBs' backs, the way a
    // driver migrating a page would, then shoot its ASID down.
    Vpn remapped = kInvalidPfn;
    for (Vpn vpn = 0; vpn < 200000; ++vpn) {
        if (gpu.sharedTlb().probe(1, vpn)) {
            remapped = vpn;
            break;
        }
    }
    ASSERT_NE(remapped, kInvalidPfn) << "no ASID-1 entry cached";
    ASSERT_TRUE(gpu.pageTable(0).unmapPage(remapped));
    gpu.tlbShootdown(1);
    gpu.run(15000);

    EXPECT_GT(gpu.faultInjector().shootdownsInjected(), 0u);

    // The remapped page, if re-cached anywhere, must carry the frame
    // from the live page table (demand-remapped on the next touch).
    const Pfn live = gpu.pageTable(0).lookup(remapped);
    Pfn cached = kInvalidPfn;
    if (gpu.sharedTlb().lookup(1, remapped, &cached))
        EXPECT_EQ(cached, live);
    for (const CoreId c : gpu.coresOf(0)) {
        if (gpu.core(c).l1Tlb().lookup(1, remapped, &cached))
            EXPECT_EQ(cached, live);
    }

    // Full isolation + correctness sweep: every translation cached
    // for an ASID agrees with that ASID's own page table.
    int checked = 0;
    for (AppId app = 0; app < 2; ++app) {
        const Asid asid = static_cast<Asid>(app + 1);
        for (Vpn vpn = 0; vpn < 200000; ++vpn) {
            if (!gpu.sharedTlb().lookup(asid, vpn, &cached))
                continue;
            EXPECT_EQ(cached, gpu.pageTable(app).lookup(vpn))
                << "asid " << asid << " vpn " << vpn;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

} // namespace
} // namespace mask
