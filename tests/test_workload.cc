/**
 * @file
 * Tests for the synthetic workload generator and the benchmark suite.
 */

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "workload/generator.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

BenchmarkParams
simpleParams()
{
    BenchmarkParams p;
    p.hotPages = 4;
    p.coldPages = 1000;
    p.hotFraction = 0.25;
    p.pageRun = 4;
    p.streamFraction = 0.5;
    p.blockWarps = 8;
    p.randWindow = 4;
    p.stepAccesses = 16;
    p.pageStride = 17;
    p.lineReuse = 0.0;
    return p;
}

TEST(Generator, AddressesStayInWorkingSet)
{
    const BenchmarkParams p = simpleParams();
    WarpMemState state;
    StreamTable table;
    Rng rng(1);
    const std::uint64_t max_page = workingSetPages(p);
    for (int i = 0; i < 5000; ++i) {
        const Addr vaddr = nextVaddr(p, state, rng, 3, table, 12, 7);
        EXPECT_LT(vaddr >> 12, max_page);
    }
}

TEST(Generator, Deterministic)
{
    const BenchmarkParams p = simpleParams();
    WarpMemState s1, s2;
    StreamTable t1, t2;
    Rng r1(9), r2(9);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(nextVaddr(p, s1, r1, 5, t1, 12, 7),
                  nextVaddr(p, s2, r2, 5, t2, 12, 7));
    }
}

TEST(Generator, StreamMembersShareHeadPages)
{
    BenchmarkParams p = simpleParams();
    p.hotFraction = 0.0;
    p.streamFraction = 1.0; // pure streaming
    p.pageRun = 1;
    WarpMemState a, b;
    StreamTable table;
    Rng rng(3);
    // Warps 0 and 1 are in block 0 (blockWarps = 8): same stream.
    std::set<Vpn> pages_a, pages_b;
    for (int i = 0; i < 400; ++i) {
        pages_a.insert(nextVaddr(p, a, rng, 0, table, 12, 7) >> 12);
        pages_b.insert(nextVaddr(p, b, rng, 1, table, 12, 7) >> 12);
    }
    // Same stream, interleaved advance: page sets overlap heavily.
    std::set<Vpn> common;
    for (Vpn v : pages_a) {
        if (pages_b.count(v))
            common.insert(v);
    }
    EXPECT_GT(common.size(), pages_a.size() / 2);
}

TEST(Generator, DifferentStreamsUseDifferentPages)
{
    BenchmarkParams p = simpleParams();
    p.hotFraction = 0.0;
    p.streamFraction = 1.0;
    WarpMemState a, b;
    StreamTable table;
    Rng rng(3);
    std::set<Vpn> pages_a, pages_b;
    for (int i = 0; i < 200; ++i) {
        // Warp 0 -> stream 0; warp 8 -> stream 1.
        pages_a.insert(nextVaddr(p, a, rng, 0, table, 12, 7) >> 12);
        pages_b.insert(nextVaddr(p, b, rng, 8, table, 12, 7) >> 12);
    }
    std::size_t common = 0;
    for (Vpn v : pages_a)
        common += pages_b.count(v);
    EXPECT_LT(common, 3u);
}

TEST(Generator, HotPagesComeFromHotSet)
{
    BenchmarkParams p = simpleParams();
    p.hotFraction = 1.0;
    p.pageRun = 1;
    WarpMemState state;
    StreamTable table;
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const Vpn page = nextVaddr(p, state, rng, 0, table, 12, 7) >> 12;
        EXPECT_LT(page, p.hotPages);
    }
}

TEST(Generator, LineReuseFlagAndStability)
{
    BenchmarkParams p = simpleParams();
    p.lineReuse = 0.5;
    p.pageRun = 100;
    p.stepAccesses = 100000; // head never steps during the test
    WarpMemState state;
    StreamTable table;
    Rng rng(11);
    bool reused = false;
    Addr prev = nextVaddr(p, state, rng, 0, table, 12, 7, &reused);
    EXPECT_FALSE(reused) << "first access cannot be a reuse";
    int reuses = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr vaddr =
            nextVaddr(p, state, rng, 0, table, 12, 7, &reused);
        if (reused) {
            EXPECT_EQ(vaddr, prev)
                << "a reused access must repeat the previous line";
            ++reuses;
        }
        prev = vaddr;
    }
    EXPECT_NEAR(reuses, 1000, 100);
}

TEST(Generator, HeadAdvancesWithProgress)
{
    BenchmarkParams p = simpleParams();
    p.hotFraction = 0.0;
    p.streamFraction = 1.0;
    p.stepAccesses = 10;
    p.pageRun = 100; // only steps change the page
    WarpMemState state;
    StreamTable table;
    Rng rng(13);
    std::set<Vpn> pages;
    for (int i = 0; i < 100; ++i)
        pages.insert(nextVaddr(p, state, rng, 0, table, 12, 7) >> 12);
    // 100 accesses / 10 per step = 10 head positions.
    EXPECT_GE(pages.size(), 9u);
    EXPECT_LE(pages.size(), 11u);
}

TEST(Generator, StrideSeparatesConsecutiveLeafLines)
{
    BenchmarkParams p = simpleParams();
    p.hotFraction = 0.0;
    p.streamFraction = 1.0;
    p.stepAccesses = 1;
    p.pageRun = 1;
    p.pageStride = 17;
    WarpMemState state;
    StreamTable table;
    Rng rng(17);
    Vpn prev = nextVaddr(p, state, rng, 0, table, 12, 7) >> 12;
    for (int i = 0; i < 50; ++i) {
        const Vpn page = nextVaddr(p, state, rng, 0, table, 12, 7) >> 12;
        if (page != prev) {
            // 16 PTEs per 128B line: stride 17 changes the leaf line.
            EXPECT_NE(page / 16, prev / 16);
        }
        prev = page;
    }
}

TEST(StreamTable, GrowsOnDemand)
{
    StreamTable table;
    EXPECT_EQ(table.count(100), 0u);
    EXPECT_EQ(table.advance(100), 0u);
    EXPECT_EQ(table.advance(100), 1u);
    EXPECT_EQ(table.count(100), 2u);
    table.reset();
    EXPECT_EQ(table.count(100), 0u);
}

TEST(ComputeInterval, RespectsMeanRoughly)
{
    BenchmarkParams p;
    p.computeMean = 8;
    Rng rng(23);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += nextComputeInterval(p, rng);
    EXPECT_NEAR(sum / n, 8.0, 1.0);
}

// ---------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------

TEST(Suite, ThirtyBenchmarks)
{
    EXPECT_EQ(benchmarkSuite().size(), 30u);
}

TEST(Suite, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &b : benchmarkSuite())
        names.insert(b.name);
    EXPECT_EQ(names.size(), benchmarkSuite().size());
}

TEST(Suite, Table2QuadrantCounts)
{
    int ll = 0, lh = 0, hl = 0, hh = 0;
    for (const auto &b : benchmarkSuite()) {
        const bool l1 = b.l1Class == MissClass::High;
        const bool l2 = b.l2Class == MissClass::High;
        if (!l1 && !l2)
            ++ll;
        else if (!l1 && l2)
            ++lh;
        else if (l1 && !l2)
            ++hl;
        else
            ++hh;
    }
    // Table 2: 2 LL + 8 LH + 4 HL + 13 HH benchmarks, plus the three
    // extra Figs. 5/6 benchmarks (JPEG -> LH, LIB/SPMV -> HH).
    EXPECT_EQ(ll, 2);
    EXPECT_EQ(lh, 9);
    EXPECT_EQ(hl, 4);
    EXPECT_EQ(hh, 15);
}

TEST(Suite, FindBenchmarkReturnsRequested)
{
    EXPECT_STREQ(findBenchmark("3DS").name, "3DS");
    EXPECT_STREQ(findBenchmark("GUP").name, "GUP");
}

TEST(Suite, ThirtyFivePairsWithValidNames)
{
    const auto &pairs = workloadPairs();
    EXPECT_EQ(pairs.size(), 35u);
    for (const auto &pair : pairs) {
        EXPECT_NO_FATAL_FAILURE(findBenchmark(pair.first));
        EXPECT_NO_FATAL_FAILURE(findBenchmark(pair.second));
    }
}

TEST(Suite, HmrCategoriesMatchPaper)
{
    EXPECT_EQ(pairsWithHmr(0).size(), 8u);
    EXPECT_EQ(pairsWithHmr(1).size(), 16u);
    EXPECT_EQ(pairsWithHmr(2).size(), 11u);
}

TEST(Suite, HmrLabelsMatchBenchmarkClasses)
{
    for (const auto &pair : workloadPairs()) {
        int hh = 0;
        for (const char *name : {pair.first, pair.second}) {
            const BenchmarkParams &b = findBenchmark(name);
            hh += b.l1Class == MissClass::High &&
                  b.l2Class == MissClass::High;
        }
        EXPECT_EQ(hh, pair.hmr) << pair.name();
    }
}

TEST(Suite, Fig7PairsArePresent)
{
    const auto &pairs = fig7Pairs();
    ASSERT_EQ(pairs.size(), 4u);
    EXPECT_EQ(pairs[0].name(), "3DS_HISTO");
    EXPECT_EQ(pairs[3].name(), "RED_RAY");
}

TEST(Suite, BigFootprintAppsExceedSharedL2Tlb)
{
    // High-L2 apps must not fit in the 512-entry shared L2 TLB.
    for (const auto &b : benchmarkSuite()) {
        if (b.l2Class == MissClass::High)
            EXPECT_GT(workingSetPages(b), 512u) << b.name;
        else
            EXPECT_LE(workingSetPages(b), 512u) << b.name;
    }
}

} // namespace
} // namespace mask
