/**
 * Tests for distributed sweep execution (DESIGN.md §15): the lease
 * codec and claim/steal/abandon protocol, heartbeat liveness, torn
 * shard tolerance, duplicate-entry resolution, deterministic merge
 * (two concurrent workers must render results bit-identical to a
 * serial run), merge-only mode, journal hardening against torn tails
 * and concurrent appends, and the warning rate limiter.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/config.hh"
#include "common/rate_limit.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/sweep_dist.hh"
#include "sim/sweep_io.hh"

using namespace mask;

namespace {

RunOptions
shortOptions()
{
    RunOptions options;
    options.warmup = 2000;
    options.measure = 6000;
    return options;
}

std::vector<SweepJob>
sampleJobs()
{
    const GpuConfig arch = archByName("maxwell");
    std::vector<SweepJob> jobs;
    for (const DesignPoint point :
         {DesignPoint::SharedTlb, DesignPoint::Mask}) {
        jobs.push_back({arch, point, {"HISTO", "LPS"}});
        jobs.push_back({arch, point, {"3DS", "RED"}});
    }
    return jobs;
}

/** Unique-ish temp path under the build dir (no clock/random: gtest
 *  runs each test binary in its own ctest process). */
std::string
tempPath(const std::string &tag)
{
    return "sweep_dist_" + tag + "_" + std::to_string(::getpid()) +
           ".tmp";
}

void
removeTree(const std::string &path)
{
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

/** Synthetic distinguishable result for executor-driven tests. */
PairResult
syntheticResult(double ipc)
{
    PairResult result;
    result.sharedIpc = {ipc, ipc / 2};
    result.aloneIpc = {ipc * 2, ipc};
    result.weightedSpeedup = 1.5;
    result.unfairness = 2.0;
    result.ipcThroughput = ipc * 1.5;
    result.stats.cycles = 1234;
    result.stats.ipc = result.sharedIpc;
    return result;
}

DistPolicy
testPolicy(const std::string &dir, const std::string &worker)
{
    DistPolicy policy;
    policy.dir = dir;
    policy.worker = worker;
    policy.heartbeatMs = 50;
    policy.stealAfterMs = 60000; // no accidental steals in tests
    policy.pollMs = 20;
    return policy;
}

std::string
readFile(const std::string &path)
{
    std::string out;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
              content.size());
    std::fclose(f);
}

/** First "key" field in @p shard_path (jobKey is private; shards are
 *  the public surface that carries it). */
std::string
firstShardKey(const std::string &shard_path)
{
    const std::string data = readFile(shard_path);
    const std::size_t nl = data.find('\n');
    std::string key;
    EXPECT_TRUE(jsonField(data.substr(0, nl), "key", key))
        << shard_path;
    return key;
}

} // namespace

// ---------------------------------------------------------------------
// Lease codec + naming
// ---------------------------------------------------------------------

TEST(DistLeaseCodec, RoundTripsAndPadsToFixedSize)
{
    DistLease lease;
    lease.worker = "w1";
    lease.pid = 4242;
    lease.host = "hostname-a";
    lease.deadlineMs = 1234567890123ull;
    lease.steals = 2;

    const std::string image = encodeLease(lease);
    EXPECT_EQ(image.size(), kDistLeaseFileSize);
    EXPECT_EQ(image.back(), '\n');

    DistLease back;
    ASSERT_TRUE(decodeLease(image, back));
    EXPECT_EQ(back.worker, lease.worker);
    EXPECT_EQ(back.pid, lease.pid);
    EXPECT_EQ(back.host, lease.host);
    EXPECT_EQ(back.deadlineMs, lease.deadlineMs);
    EXPECT_EQ(back.steals, lease.steals);
}

TEST(DistLeaseCodec, RejectsTornOrForeignContent)
{
    DistLease out;
    EXPECT_FALSE(decodeLease("", out));
    EXPECT_FALSE(decodeLease("MASKLEASE v1 worker=w1 pid=", out));
    EXPECT_FALSE(decodeLease("not a lease at all", out));
}

TEST(DistLeaseCodec, LeaseNameIsStableHex)
{
    const std::string name = distLeaseName("some|job|key");
    EXPECT_EQ(name.size(), 16 + 6u); // 16 hex chars + ".lease"
    EXPECT_EQ(name.substr(16), ".lease");
    EXPECT_EQ(name, distLeaseName("some|job|key"));
    EXPECT_NE(name, distLeaseName("some|job|key2"));
}

TEST(DistPolicyEnv, ParsesKnobsAndEnforcesFloors)
{
    ::setenv("MASK_SWEEP_DIST_DIR", "/tmp/distenv", 1);
    ::setenv("MASK_SWEEP_DIST_WORKER", "worker one!", 1);
    ::setenv("MASK_SWEEP_DIST_HEARTBEAT_MS", "2000", 1);
    ::setenv("MASK_SWEEP_DIST_STEAL_AFTER_MS", "100", 1);
    ::setenv("MASK_SWEEP_DIST_MAX_STEALS", "5", 1);
    ::setenv("MASK_SWEEP_DIST_MERGE", "1", 1);
    const DistPolicy policy = distPolicyFromEnv();
    ::unsetenv("MASK_SWEEP_DIST_DIR");
    ::unsetenv("MASK_SWEEP_DIST_WORKER");
    ::unsetenv("MASK_SWEEP_DIST_HEARTBEAT_MS");
    ::unsetenv("MASK_SWEEP_DIST_STEAL_AFTER_MS");
    ::unsetenv("MASK_SWEEP_DIST_MAX_STEALS");
    ::unsetenv("MASK_SWEEP_DIST_MERGE");

    EXPECT_TRUE(policy.enabled());
    EXPECT_EQ(policy.dir, "/tmp/distenv");
    EXPECT_EQ(policy.worker, "worker_one_"); // sanitized
    EXPECT_EQ(policy.heartbeatMs, 2000u);
    // The staleness window must cover at least two heartbeats.
    EXPECT_EQ(policy.stealAfterMs, 4000u);
    EXPECT_EQ(policy.maxSteals, 5u);
    EXPECT_TRUE(policy.mergeOnly);

    EXPECT_FALSE(distPolicyFromEnv().enabled());
}

TEST(SweepStatusNames, RoundTripIncludingAbandoned)
{
    for (const SweepStatus status :
         {SweepStatus::Ok, SweepStatus::Failed, SweepStatus::TimedOut,
          SweepStatus::Crashed, SweepStatus::Abandoned}) {
        EXPECT_EQ(sweepStatusFromName(sweepStatusName(status)),
                  status);
    }
    EXPECT_STREQ(sweepStatusName(SweepStatus::Abandoned), "Abandoned");
    EXPECT_EQ(sweepStatusFromName("SomethingNew"),
              SweepStatus::Failed);
}

// ---------------------------------------------------------------------
// Claim / steal / abandon protocol
// ---------------------------------------------------------------------

TEST(DistCoordinator, ClaimConflictsResolveByLease)
{
    const std::string dir = tempPath("claim");
    removeTree(dir);
    DistCoordinator w1(testPolicy(dir, "w1"));
    DistCoordinator w2(testPolicy(dir, "w2"));

    unsigned steals = 99;
    EXPECT_EQ(w1.tryClaim("jobA", &steals),
              DistCoordinator::Claim::Acquired);
    EXPECT_EQ(steals, 0u);
    // A fresh lease held by w1 is Busy for w2 and for a re-claim.
    EXPECT_EQ(w2.tryClaim("jobA", nullptr),
              DistCoordinator::Claim::Busy);
    EXPECT_EQ(w1.tryClaim("jobA", nullptr),
              DistCoordinator::Claim::Busy);
    // Different job: no conflict.
    EXPECT_EQ(w2.tryClaim("jobB", nullptr),
              DistCoordinator::Claim::Acquired);

    w1.release("jobA");
    EXPECT_EQ(w2.tryClaim("jobA", nullptr),
              DistCoordinator::Claim::Acquired);
    EXPECT_EQ(w2.stats().leasesClaimed, 2u);
    EXPECT_EQ(w2.stats().leasesStolen, 0u);
    removeTree(dir);
}

TEST(DistCoordinator, StealsProvablyStaleLease)
{
    const std::string dir = tempPath("steal");
    removeTree(dir);
    DistCoordinator w2(testPolicy(dir, "w2"));

    // A lease whose holder stopped heartbeating long ago.
    DistLease dead;
    dead.worker = "deadbeef";
    dead.pid = 1;
    dead.host = "gone";
    dead.deadlineMs = 1000; // 1970: long past
    dead.steals = 0;
    writeFile(dir + "/leases/" + distLeaseName("jobX"),
              encodeLease(dead));

    unsigned steals = 0;
    EXPECT_EQ(w2.tryClaim("jobX", &steals),
              DistCoordinator::Claim::Acquired);
    EXPECT_EQ(steals, 1u);
    EXPECT_EQ(w2.stats().leasesStolen, 1u);
    EXPECT_EQ(w2.stats().staleSeen, 1u);

    // The stolen lease is fresh now: a peer sees Busy.
    DistCoordinator w3(testPolicy(dir, "w3"));
    EXPECT_EQ(w3.tryClaim("jobX", nullptr),
              DistCoordinator::Claim::Busy);
    removeTree(dir);
}

TEST(DistCoordinator, AbandonsAfterMaxSteals)
{
    const std::string dir = tempPath("abandon");
    removeTree(dir);
    DistPolicy policy = testPolicy(dir, "w2");
    policy.maxSteals = 3;
    DistCoordinator w2(policy);

    DistLease dead;
    dead.worker = "cursed";
    dead.pid = 1;
    dead.host = "gone";
    dead.deadlineMs = 1000;
    dead.steals = 3; // already changed hands maxSteals times
    writeFile(dir + "/leases/" + distLeaseName("jobX"),
              encodeLease(dead));

    unsigned steals = 0;
    EXPECT_EQ(w2.tryClaim("jobX", &steals),
              DistCoordinator::Claim::Abandoned);
    EXPECT_EQ(steals, 3u);
    EXPECT_EQ(w2.stats().leasesStolen, 0u);
    removeTree(dir);
}

TEST(DistCoordinator, HeartbeatKeepsLeaseFresh)
{
    const std::string dir = tempPath("heartbeat");
    removeTree(dir);
    DistPolicy policy = testPolicy(dir, "w1");
    policy.heartbeatMs = 30;
    policy.stealAfterMs = 120;
    DistCoordinator w1(policy);
    ASSERT_EQ(w1.tryClaim("jobH", nullptr),
              DistCoordinator::Claim::Acquired);

    // Sleep several staleness windows: without heartbeats the lease
    // would be stealable; with them a peer must still see Busy.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    DistPolicy peer = policy;
    peer.worker = "w2";
    DistCoordinator w2(peer);
    EXPECT_EQ(w2.tryClaim("jobH", nullptr),
              DistCoordinator::Claim::Busy);
    EXPECT_EQ(w2.stats().staleSeen, 0u);

    // The on-disk image reflects a recent beat.
    DistLease lease;
    ASSERT_TRUE(decodeLease(
        readFile(dir + "/leases/" + distLeaseName("jobH")), lease));
    EXPECT_EQ(lease.worker, "w1");
    EXPECT_GT(lease.deadlineMs, distEpochMs() - 1000);
    removeTree(dir);
}

// ---------------------------------------------------------------------
// Distributed SweepRunner end to end
// ---------------------------------------------------------------------

TEST(SweepDist, TwoConcurrentWorkersMatchSerialBitExact)
{
    const std::string dir = tempPath("tworunners");
    removeTree(dir);
    const std::vector<SweepJob> jobs = sampleJobs();

    SweepRunner serial(shortOptions(), 1);
    for (const SweepJob &job : jobs)
        serial.submit(job);
    serial.run();

    auto runWorker = [&](const char *name, SweepRunner &runner) {
        runner.setDistPolicy(testPolicy(dir, name));
        for (const SweepJob &job : jobs)
            runner.submit(job);
        runner.run();
    };
    SweepRunner a(shortOptions(), 1);
    SweepRunner b(shortOptions(), 1);
    std::thread tb([&] { runWorker("wb", b); });
    runWorker("wa", a);
    tb.join();

    std::uint64_t executed = 0;
    for (SweepRunner *runner : {&a, &b}) {
        ASSERT_EQ(runner->completedJobs(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            ASSERT_EQ(runner->outcome(i).status, SweepStatus::Ok)
                << runner->outcome(i).error;
            // Bit-exact equality with the serial baseline, via the
            // exact codec.
            EXPECT_EQ(encodePairResult(runner->result(i)),
                      encodePairResult(serial.result(i)))
                << "job " << i;
        }
        executed += runner->distStats().executed;
    }
    // Every job ran somewhere; claim races may add duplicates but
    // never lose work.
    EXPECT_GE(executed, jobs.size());
    EXPECT_GT(a.distStats().leasesClaimed + b.distStats().leasesClaimed,
              0u);
    removeTree(dir);
}

TEST(SweepDist, SecondWorkerLoadsFromDeadWorkersShardToleratingTornTail)
{
    const std::string dir = tempPath("harvest");
    removeTree(dir);
    const std::vector<SweepJob> jobs = sampleJobs();

    // Worker 1 completes the sweep, then "dies": its shard (with an
    // appended torn final record, as a SIGKILL mid-append would
    // leave) is all that survives.
    {
        SweepRunner w1(shortOptions(), 1);
        w1.setDistPolicy(testPolicy(dir, "w1"));
        w1.setExecutorForTest([](Evaluator &, const SweepJob &) {
            return syntheticResult(1.25);
        });
        for (const SweepJob &job : jobs)
            w1.submit(job);
        w1.run();
        ASSERT_EQ(w1.distStats().executed, jobs.size());
    }
    const std::string shard = dir + "/shards/w1.jsonl";
    writeFile(shard, readFile(shard) + "{\"key\":\"torn-partial");

    SweepRunner w2(shortOptions(), 1);
    w2.setDistPolicy(testPolicy(dir, "w2"));
    w2.setExecutorForTest([](Evaluator &, const SweepJob &) -> PairResult {
        throw std::runtime_error("w2 must load, not execute");
    });
    for (const SweepJob &job : jobs)
        w2.submit(job);
    w2.run();

    const DistSweepStats &stats = w2.distStats();
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.loadedRemote, jobs.size());
    EXPECT_EQ(stats.tornLines, 1u); // the dead worker's torn tail
    EXPECT_EQ(stats.duplicates, 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_EQ(w2.outcome(i).status, SweepStatus::Ok)
            << w2.outcome(i).error;
        EXPECT_TRUE(w2.outcome(i).fromJournal);
        EXPECT_EQ(encodePairResult(w2.result(i)),
                  encodePairResult(syntheticResult(1.25)));
    }
    // The torn tail stays: a remote reader never truncates a shard it
    // does not own.
    EXPECT_NE(readFile(shard).find("torn-partial"), std::string::npos);
    removeTree(dir);
}

TEST(SweepDist, DuplicateEntriesResolveDeterministically)
{
    const std::string dir = tempPath("dup");
    removeTree(dir);
    const std::vector<SweepJob> jobs = {sampleJobs().front()};

    // Shard "aa" holds the first durable entry for the job.
    {
        SweepRunner first(shortOptions(), 1);
        first.setDistPolicy(testPolicy(dir, "aa"));
        first.setExecutorForTest([](Evaluator &, const SweepJob &) {
            return syntheticResult(1.0);
        });
        first.submit(jobs[0]);
        first.run();
    }
    // A double-claiming straggler lands a second Ok entry for the
    // same key in shard "zz" with a different payload.
    const std::string key = firstShardKey(dir + "/shards/aa.jsonl");
    ASSERT_FALSE(key.empty());
    const std::string dup_blob =
        encodePairResult(syntheticResult(9.0));
    writeFile(dir + "/shards/zz.jsonl",
              "{\"key\":\"" + jsonEscape(key) +
                  "\",\"status\":\"Ok\",\"attempts\":\"1\","
                  "\"error\":\"\",\"worker\":\"zz\",\"result\":\"" +
                  jsonEscape(dup_blob) + "\"}\n");

    SweepRunner merge(shortOptions(), 1);
    DistPolicy policy = testPolicy(dir, "mm");
    policy.mergeOnly = true;
    merge.setDistPolicy(policy);
    merge.submit(jobs[0]);
    merge.run();

    ASSERT_EQ(merge.outcome(0).status, SweepStatus::Ok);
    // Sorted-shard-order tie-break: "aa" (the first durable entry)
    // wins over "zz" regardless of scan order.
    EXPECT_EQ(encodePairResult(merge.result(0)),
              encodePairResult(syntheticResult(1.0)));
    EXPECT_EQ(merge.distStats().duplicates, 1u);
    removeTree(dir);
}

TEST(SweepDist, MergeOnlyModeNeverExecutesAndFlagsMissingJobs)
{
    const std::string dir = tempPath("mergeonly");
    removeTree(dir);
    const std::vector<SweepJob> jobs = sampleJobs();

    {
        SweepRunner w1(shortOptions(), 1);
        w1.setDistPolicy(testPolicy(dir, "w1"));
        w1.setExecutorForTest([](Evaluator &, const SweepJob &) {
            return syntheticResult(2.5);
        });
        // Populate all but the last job.
        for (std::size_t i = 0; i + 1 < jobs.size(); ++i)
            w1.submit(jobs[i]);
        w1.run();
    }

    SweepRunner merge(shortOptions(), 1);
    DistPolicy policy = testPolicy(dir, "mm");
    policy.mergeOnly = true;
    merge.setDistPolicy(policy);
    merge.setExecutorForTest([](Evaluator &, const SweepJob &) -> PairResult {
        throw std::runtime_error("merge-only must not execute");
    });
    for (const SweepJob &job : jobs)
        merge.submit(job);
    merge.run();

    EXPECT_EQ(merge.distStats().executed, 0u);
    for (std::size_t i = 0; i + 1 < jobs.size(); ++i)
        EXPECT_EQ(merge.outcome(i).status, SweepStatus::Ok);
    const SweepOutcome &missing = merge.outcome(jobs.size() - 1);
    EXPECT_EQ(missing.status, SweepStatus::Failed);
    EXPECT_NE(missing.error.find("MASK_SWEEP_DIST_MERGE"),
              std::string::npos);
    removeTree(dir);
}

TEST(SweepDist, MaxStealsDegradesJobToAbandoned)
{
    const std::string dir = tempPath("degrade");
    removeTree(dir);
    const std::vector<SweepJob> jobs = {sampleJobs().front()};

    // Learn the job key from a throwaway run in a scratch dir.
    const std::string scratch = tempPath("degrade_scratch");
    removeTree(scratch);
    {
        SweepRunner probe(shortOptions(), 1);
        probe.setDistPolicy(testPolicy(scratch, "probe"));
        probe.setExecutorForTest([](Evaluator &, const SweepJob &) {
            return syntheticResult(1.0);
        });
        probe.submit(jobs[0]);
        probe.run();
    }
    const std::string key =
        firstShardKey(scratch + "/shards/probe.jsonl");
    removeTree(scratch);
    ASSERT_FALSE(key.empty());

    // A stale lease that already changed hands maxSteals times, with
    // no durable result anywhere: the poison-job shape.
    DistPolicy policy = testPolicy(dir, "w1");
    policy.maxSteals = 2;
    ::mkdir(dir.c_str(), 0755);
    ::mkdir((dir + "/leases").c_str(), 0755);
    DistLease cursed;
    cursed.worker = "victim3";
    cursed.pid = 1;
    cursed.host = "gone";
    cursed.deadlineMs = 1000;
    cursed.steals = 2;
    writeFile(dir + "/leases/" + distLeaseName(key),
              encodeLease(cursed));

    SweepRunner w1(shortOptions(), 1);
    w1.setDistPolicy(policy);
    w1.setExecutorForTest([](Evaluator &, const SweepJob &) -> PairResult {
        throw std::runtime_error("abandoned job must not execute");
    });
    w1.submit(jobs[0]);
    w1.run();

    const SweepOutcome &outcome = w1.outcome(0);
    EXPECT_EQ(outcome.status, SweepStatus::Abandoned);
    EXPECT_NE(outcome.error.find("MASK_SWEEP_DIST_MAX_STEALS"),
              std::string::npos);
    EXPECT_EQ(w1.distStats().abandoned, 1u);
    EXPECT_THROW(w1.result(0), std::runtime_error);

    // The Abandoned record is durable: a later worker loads the
    // degraded outcome instead of re-fighting the lease.
    SweepRunner w2(shortOptions(), 1);
    w2.setDistPolicy(testPolicy(dir, "w2"));
    w2.setExecutorForTest([](Evaluator &, const SweepJob &) -> PairResult {
        throw std::runtime_error("must load the Abandoned entry");
    });
    w2.submit(jobs[0]);
    w2.run();
    EXPECT_EQ(w2.outcome(0).status, SweepStatus::Abandoned);
    EXPECT_TRUE(w2.outcome(0).fromJournal);
    removeTree(dir);
}

// ---------------------------------------------------------------------
// Journal hardening (torn tails, concurrent appends)
// ---------------------------------------------------------------------

TEST(SweepJournalHardening, TornFinalLineIsTruncatedAndCounted)
{
    const std::string path = tempPath("torn");
    const PairResult result = syntheticResult(3.0);
    {
        SweepJournal journal(path);
        journal.record("good-key", "Ok", 1, "", &result);
    }
    const std::string intact = readFile(path);
    writeFile(path, intact + "{\"key\":\"half-writ");

    SweepJournal reopened(path);
    EXPECT_EQ(reopened.tornTailLines(), 1u);
    EXPECT_EQ(reopened.malformedLines(), 0u);
    PairResult back;
    unsigned attempts = 0;
    EXPECT_TRUE(reopened.lookupOk("good-key", back, attempts));
    EXPECT_EQ(encodePairResult(back), encodePairResult(result));
    // Truncated back to the last complete record: a future append
    // starts on a clean boundary.
    EXPECT_EQ(readFile(path), intact);
    ::unlink(path.c_str());
}

TEST(SweepJournalHardening, MalformedCompleteLinesAreCountedNotFatal)
{
    const std::string path = tempPath("malformed");
    const PairResult result = syntheticResult(4.0);
    {
        SweepJournal journal(path);
        journal.record("k1", "Ok", 1, "", &result);
    }
    writeFile(path, readFile(path) + "this is not json\n");

    SweepJournal reopened(path);
    EXPECT_EQ(reopened.malformedLines(), 1u);
    EXPECT_EQ(reopened.tornTailLines(), 0u);
    EXPECT_EQ(reopened.okEntries(), 1u);
    ::unlink(path.c_str());
}

TEST(SweepJournalHardening, RecordsReproAndWorkerFields)
{
    const std::string path = tempPath("fields");
    {
        SweepJournal journal(path);
        journal.setWorkerTag("w7");
        journal.record("kx", "Crashed", 2, "child killed", nullptr,
                       "/tmp/repro.json");
    }
    const std::string data = readFile(path);
    std::string repro, worker;
    ASSERT_TRUE(jsonField(data, "repro", repro));
    ASSERT_TRUE(jsonField(data, "worker", worker));
    EXPECT_EQ(repro, "/tmp/repro.json");
    EXPECT_EQ(worker, "w7");
    ::unlink(path.c_str());
}

TEST(SweepJournalHardening, ConcurrentThreadAppendsAllSurvive)
{
    const std::string path = tempPath("threads");
    constexpr int kPerThread = 64;
    {
        SweepJournal journal(path);
        const PairResult result = syntheticResult(5.0);
        auto writer = [&](const char *prefix) {
            for (int i = 0; i < kPerThread; ++i) {
                journal.record(prefix + std::to_string(i), "Ok", 1,
                               "", &result);
            }
        };
        std::thread t1(writer, "a");
        std::thread t2(writer, "b");
        t1.join();
        t2.join();
    }
    SweepJournal reopened(path);
    EXPECT_EQ(reopened.okEntries(),
              static_cast<std::size_t>(2 * kPerThread));
    EXPECT_EQ(reopened.malformedLines(), 0u);
    EXPECT_EQ(reopened.tornTailLines(), 0u);
    ::unlink(path.c_str());
}

TEST(SweepJournalHardening, ConcurrentProcessAppendsNeverInterleave)
{
    // Two processes appending whole records to the SAME file — the
    // distributed executor never shares a shard, but O_APPEND
    // single-write atomicity is what makes every shard readable while
    // its owner is still writing, so pin it down hard.
    const std::string path = tempPath("procs");
    ::unlink(path.c_str());
    constexpr int kPerProc = 128;
    const auto child = [&](const char *prefix) {
        const pid_t pid = ::fork();
        if (pid != 0)
            return pid;
        {
            SweepJournal journal(path);
            const PairResult result = syntheticResult(6.0);
            // Long error text pushes each record across multiple
            // stdio-buffer sizes: torn interleavings would be loud.
            const std::string filler(700, 'x');
            for (int i = 0; i < kPerProc; ++i) {
                journal.record(prefix + std::to_string(i), "Failed",
                               1, filler, nullptr);
            }
        }
        std::_Exit(0);
    };
    const pid_t p1 = child("p1_");
    const pid_t p2 = child("p2_");
    int status = 0;
    ASSERT_EQ(::waitpid(p1, &status, 0), p1);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    ASSERT_EQ(::waitpid(p2, &status, 0), p2);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    SweepJournal reopened(path);
    EXPECT_EQ(reopened.malformedLines(), 0u);
    EXPECT_EQ(reopened.tornTailLines(), 0u);
    const std::string data = readFile(path);
    std::size_t lines = 0;
    for (const char c : data)
        lines += c == '\n';
    EXPECT_EQ(lines, static_cast<std::size_t>(2 * kPerProc));
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------------
// Warning rate limiter
// ---------------------------------------------------------------------

TEST(WarnRateLimiter, FirstThenEveryNth)
{
    WarnRateLimiter warns(16);
    EXPECT_EQ(warns.tick(), 1u);
    for (std::uint64_t i = 2; i < 16; ++i)
        EXPECT_EQ(warns.tick(), 0u) << i;
    EXPECT_EQ(warns.tick(), 16u);
    for (std::uint64_t i = 17; i < 32; ++i)
        EXPECT_EQ(warns.tick(), 0u) << i;
    EXPECT_EQ(warns.tick(), 32u);
    EXPECT_EQ(warns.occurrences(), 32u);
}

TEST(WarnRateLimiter, EveryOneReportsAll)
{
    WarnRateLimiter warns(1);
    EXPECT_EQ(warns.tick(), 1u);
    EXPECT_EQ(warns.tick(), 2u);
    EXPECT_EQ(warns.tick(), 3u);
}

TEST(WarnRateLimiter, ThreadSafeCounting)
{
    WarnRateLimiter warns(1000000); // count, rarely report
    constexpr int kThreads = 4, kTicks = 2500;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kTicks; ++i)
                warns.tick();
        });
    }
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(warns.occurrences(),
              static_cast<std::uint64_t>(kThreads * kTicks));
}
